#ifndef PUPIL_CORE_STRATEGY_H_
#define PUPIL_CORE_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/resource.h"
#include "machine/config.h"

namespace pupil::core {

/**
 * The software decision disciplines that can drive a walk through the
 * machine-configuration space (ROADMAP "decision-strategy zoo"):
 *
 *  - kBinarySearch: the paper's Algorithm 1 -- per-resource highest-setting
 *    probe followed by a binary search for the highest setting under the
 *    cap. The default, and byte-identical to the pre-zoo DecisionWalker.
 *  - kHillClimb: NAS-powercap-style level hill climbing -- exploit steps
 *    that keep riding an improving resource, explore steps that move to
 *    the next one, and a step-down repair phase when over the cap.
 *  - kModelGuided: FastCap-style -- probe a small design of configurations,
 *    fit capping::ConfigRegression power/performance models, jump straight
 *    to the predicted-best feasible configuration, and verify the
 *    prediction by measurement (re-fitting on every measured violation).
 *  - kRandomRestart: the baseline the others must beat -- hill climbs from
 *    seed-deterministic random starting points (util::Rng) and commits the
 *    best configuration ever measured under the cap.
 */
enum class StrategyKind {
    kBinarySearch,
    kHillClimb,
    kModelGuided,
    kRandomRestart,
};

/** Stable kebab-case name ("binary-search", "hill-climb", ...). */
const char* strategyName(StrategyKind kind);

/** All strategies, in tournament presentation order. */
const std::vector<StrategyKind>& allStrategyKinds();

/** Parse a strategyName() string; returns false on unknown names. */
bool parseStrategyKind(const std::string& text, StrategyKind* kind);

/** Knobs of the individual strategies (ignored by the others). */
struct StrategyOptions
{
    StrategyKind kind = StrategyKind::kBinarySearch;
    /**
     * Seed for kRandomRestart's util::Rng. 0 means "derive from the
     * experiment seed" (the harness substitutes a SplitMix64-derived
     * value), so sweeps stay bit-reproducible at any thread count.
     */
    uint64_t seed = 0;
    /** kHillClimb: full passes over the resource order before giving up. */
    int hillMaxPasses = 8;
    /** kModelGuided: model-ranked candidates verified by measurement. */
    int modelCandidates = 6;
    /** kModelGuided: predicted power must stay below cap * margin. */
    double modelMargin = 0.97;
    /** kRandomRestart: independent random starting points per walk. */
    int randomRestarts = 2;
};

/**
 * What a strategy sees of its driver (the DecisionWalker): the calibrated
 * resource order, the walk parameters, and the mutation/trace primitives.
 * The driver owns the configuration, the settle windows, the 3-sigma
 * filters, and the telemetry watchdog -- a strategy only ever decides
 * *which* setting to try next, so every strategy inherits the health-gated
 * sample path, the solve cache underneath the platform, and the trace
 * layer without any per-strategy plumbing.
 */
class StrategyHost
{
  public:
    virtual ~StrategyHost() = default;

    /** The resources of this walk, in calibrated order (Algorithm 2). */
    virtual const std::vector<Resource>& order() const = 0;

    /** The configuration currently applied (and being measured). */
    virtual const machine::MachineConfig& config() const = 0;

    /** The power cap in watts. */
    virtual double capWatts() const = 0;

    /** Whether the cap is enforced in software (false under RAPL). */
    virtual bool checkPower() const = 0;

    /** Relative margin for "performance dropped" tests (slightly < 0). */
    virtual double perfEpsilon() const = 0;

    /**
     * Write setting @p settingIndex into resource order()[resourceIdx].
     * Emits kConfigTry, arms the resource's actuation-delay settle window,
     * and resets the measurement filters. No-op when the resource is
     * already at that setting.
     */
    virtual void setResource(size_t resourceIdx, int settingIndex,
                             double now) = 0;

    /**
     * Jump to a whole target configuration: one setResource-style write
     * (and one kConfigTry) per resource whose setting differs, with the
     * settle window armed for the slowest changed resource. Used by the
     * model-guided and random strategies, whose moves are points rather
     * than single-knob steps.
     */
    virtual void applyTarget(const machine::MachineConfig& target,
                             double now) = 0;

    /**
     * Record a committed decision (kConfigAccept). @p i0 is the resource
     * index for single-knob moves, or -1 for whole-config moves.
     */
    virtual void emitAccept(double speedup, double powerWatts, int32_t i0,
                            int32_t i1, double now) = 0;

    /** Record a reverted decision (kConfigReject); @p i0 as above. */
    virtual void emitReject(double ratio, double powerWatts, int32_t i0,
                            int32_t i1, double now) = 0;
};

/**
 * One decision discipline behind the DecisionWalker driver: a state
 * machine that receives one filtered (performance, power) measurement of
 * the currently-applied configuration per step and mutates the
 * configuration through its host until the walk is complete.
 *
 * Contract:
 *  - begin() resets all walk state; the first step() observes the walk's
 *    initial configuration.
 *  - step() is only called with a settled, filter-full, watchdog-healthy
 *    measurement of host.config(); returning true ends the walk (the
 *    driver enters its monitor phase on the current configuration).
 *  - When host.checkPower() is set, a strategy must only complete on a
 *    configuration it measured at or below the cap (the walker-never-
 *    over-cap property, enforced for every strategy by property_test).
 */
class DecisionStrategy
{
  public:
    virtual ~DecisionStrategy() = default;

    /** strategyName() of this strategy's kind. */
    virtual const char* name() const = 0;

    /** Reset to walk from the host's current configuration. */
    virtual void begin(StrategyHost& host, double now) = 0;

    /** One measurement of host.config(); true when the walk is done. */
    virtual bool step(StrategyHost& host, double perfF, double powerF,
                      double now) = 0;

    /**
     * Small integer identifying the strategy's current sub-phase, recorded
     * as i0 of kWalkStep events. The driver reserves 0 (idle) and 4
     * (monitor); kBinarySearch uses 1..3 to match the pre-zoo walker's
     * phase numbering, keeping golden traces stable.
     */
    virtual int phaseId() const = 0;

    /** Human-readable sub-phase name (diagnostics). */
    virtual std::string phaseName() const = 0;
};

/** Instantiate the strategy selected by @p options. */
std::unique_ptr<DecisionStrategy> makeStrategy(const StrategyOptions& options);

}  // namespace pupil::core

#endif  // PUPIL_CORE_STRATEGY_H_
