#ifndef PUPIL_SIM_PHASE_DRIVER_H_
#define PUPIL_SIM_PHASE_DRIVER_H_

#include "sim/actor.h"
#include "workload/phase.h"

namespace pupil::sim {

/**
 * Drives one application through a time-varying phase schedule.
 *
 * The driver owns a mutable AppParams buffer; the platform's app entry
 * points at it. Each tick the driver checks which phase is active and
 * swaps the parameters in place when a boundary is crossed, invalidating
 * the platform's cached steady state. Governors see the change only
 * through their feedback channels -- the mechanism the paper's monitoring
 * loop (and this repo's DecisionWalker drift detection) exists to handle.
 */
class PhaseDriver : public Actor
{
  public:
    /**
     * @param appIndex index of the platform app this driver controls
     * @param schedule the cyclic phase schedule (must not be empty)
     */
    PhaseDriver(size_t appIndex, workload::PhaseSchedule schedule);

    /** The parameter buffer to register with the platform. */
    const workload::AppParams* params() const { return &current_; }

    /** Phase currently in force. */
    size_t currentPhase() const { return phaseIndex_; }

    /** Number of phase transitions driven so far. */
    int transitions() const { return transitions_; }

    void onStart(Platform& platform) override;
    void onTick(Platform& platform, double now) override;
    double periodSec() const override { return 0.1; }

  private:
    size_t appIndex_;
    workload::PhaseSchedule schedule_;
    workload::AppParams current_;
    size_t phaseIndex_ = 0;
    int transitions_ = 0;
};

}  // namespace pupil::sim

#endif  // PUPIL_SIM_PHASE_DRIVER_H_
