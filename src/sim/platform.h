#ifndef PUPIL_SIM_PLATFORM_H_
#define PUPIL_SIM_PLATFORM_H_

#include <array>
#include <memory>
#include <vector>

#include "faults/injector.h"
#include "machine/machine.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "sched/solve_cache.h"
#include "sim/actor.h"
#include "telemetry/counters.h"
#include "telemetry/energy.h"
#include "telemetry/metrics.h"
#include "telemetry/sensor.h"
#include "telemetry/settling.h"
#include "trace/trace.h"

namespace pupil::sim {

/** Construction-time options of a simulated platform. */
struct PlatformOptions
{
    double tickSec = 0.001;      ///< simulation time step
    uint64_t seed = 42;          ///< root seed for all noise streams
    double powerLagTau = 0.08;   ///< thermal/metering response (s)
    double perfLagTau = 0.12;    ///< migration/warmup response (s)
    double traceResolutionSec = 0.01;  ///< power/perf trace bucket size

    /** Noise on the governor-visible power channel (a WattsUp-class meter). */
    telemetry::SensorNoise powerNoise{0.015, 0.002, 1.35};
    /** Noise on the governor-visible performance (heartbeat) channel. */
    telemetry::SensorNoise perfNoise{0.02, 0.01, 0.35};
    /** Noise on RAPL's internal per-socket power estimator. */
    telemetry::SensorNoise raplNoise{0.005, 0.0, 1.0};

    machine::PowerParams powerParams;
    double mcBandwidthGBs = 40.0;

    /**
     * Entry bound of the scheduler solve cache (0 disables memoization).
     * Caching is decision-invariant -- cached and uncached runs are
     * byte-identical -- so this is a pure speed/memory knob. The
     * PUPIL_NO_SOLVE_CACHE environment variable (any non-empty value)
     * forces 0 at platform construction for debugging.
     */
    size_t solveCacheCapacity = sched::SolveCache::kDefaultCapacity;

    /**
     * Fault scenario (faults::FaultSchedule spec string). Empty disables
     * injection entirely: no injector is constructed and every component
     * boundary behaves byte-identically to a faultless build.
     */
    std::string faultSpec;
};

/**
 * The simulated server: machine state, running applications, the OS
 * scheduler/contention model, the power model, sensors, and bookkeeping.
 *
 * Each tick the platform:
 *  1. reads the machine's effective configuration (OS config + RAPL
 *     clamps) and re-solves the scheduler model if anything changed;
 *  2. advances first-order lags so power and performance approach the
 *     steady-state solution with realistic time constants;
 *  3. integrates energy, work, and low-level counters, and records the
 *     power/performance traces;
 *  4. wakes every registered actor that is due.
 *
 * Governors observe the platform only through the noisy sensor channels
 * (readPower, readPerformance), mirroring the paper's observe phase.
 */
class Platform
{
  public:
    Platform(const PlatformOptions& options,
             std::vector<sched::AppDemand> apps);

    // ----- setup ---------------------------------------------------------
    /** Register an actor; not owned. Call before run(). */
    void addActor(Actor* actor);

    /**
     * Attach a structured-event recorder (not owned, null detaches). The
     * platform emits scheduler re-solves, app completions, and fault
     * activations, propagates the recorder to the fault injector, and
     * hands it to actors (firmware, governors) at onStart. Attaching a
     * recorder never changes simulation behaviour: instrumentation is
     * observational only and draws from no RNG stream.
     */
    void attachTrace(trace::Recorder* recorder);

    /** The attached recorder, or nullptr (the untraced default). */
    trace::Recorder* trace() const { return trace_; }

    /** Change the initial machine configuration (applied instantly). */
    void warmStart(const machine::MachineConfig& cfg);

    // ----- control surface (used by governors and firmware) --------------
    machine::Machine& machine() { return machine_; }
    const machine::Machine& machine() const { return machine_; }
    const machine::PowerModel& powerModel() const { return powerModel_; }
    const sched::Scheduler& scheduler() const { return scheduler_; }

    /** The platform's solve cache (capacity 0 when disabled). */
    const sched::SolveCache& solveCache() const { return solveCache_; }

    /**
     * Memoized scheduler solve through the platform's cache, for
     * model-driven governors (Soft-Modeling's profiling sweep) that
     * repeatedly evaluate hypothetical configurations. Bit-identical to
     * scheduler().solve(cfg, duty, apps).
     */
    void solveCached(const machine::MachineConfig& cfg,
                     const std::array<double, 2>& duty,
                     const std::vector<sched::AppDemand>& apps,
                     sched::SystemOutcome& out);

    /** Fault injector, or nullptr when options.faultSpec is empty. */
    faults::FaultInjector* faults() { return injector_.get(); }
    const faults::FaultInjector* faults() const { return injector_.get(); }

    /** Sample total system power through the noisy meter channel (W). */
    double readPower();

    /**
     * Sample aggregate application performance through the noisy heartbeat
     * channel: sum over apps of items/s normalized by each app's solo rate
     * in the maximal configuration.
     */
    double readPerformance();

    /** RAPL's internal per-socket power estimate (low-noise). */
    double readSocketPowerEstimate(int socket);

    // ----- ground truth (used by the harness for metrics, not governors) -
    double now() const { return now_; }
    double truePower() const { return laggedTotalPower_; }
    double trueSocketPower(int s) const { return laggedSocketPower_[s]; }
    /** Current (lagged) items/s of app @p i. */
    double trueAppRate(size_t i) const { return laggedItems_[i]; }
    /** Solo items/s of app @p i in the maximal configuration. */
    double soloReferenceRate(size_t i) const { return soloRef_[i]; }
    size_t appCount() const { return apps_.size(); }
    const sched::AppDemand& app(size_t i) const { return apps_[i]; }
    /** Steady-state (unlagged) solution for the current configuration. */
    const sched::SystemOutcome& steadyState() const { return steady_; }

    /** Change app @p i's thread count mid-run (dynamic scenarios). */
    void setAppThreads(size_t i, int threads);

    /**
     * Invalidate the cached steady state after app parameters were
     * modified in place (used by PhaseDriver when a phase boundary is
     * crossed).
     */
    void touchApps() { ++appsVersion_; }

    /**
     * Give app @p i a finite amount of work (in items). When its
     * accumulated items reach the target the app exits: its threads leave
     * the system and its completion time is recorded. Multi-application
     * experiments use this to capture the paper's completion dynamics
     * (a crawling polling app poisons the machine until it finally
     * finishes; speeding it up frees everyone sooner).
     */
    void setAppWorkItems(size_t i, double items);

    /** Completion time of app @p i (seconds), or -1 if still running. */
    double completionTime(size_t i) const { return completionTime_[i]; }

    /**
     * Bind a tenant job into app slot @p i: the slot takes the job's
     * parameters, thread count, and finite work, its progress and
     * completion state reset, and the solo reference rate is re-derived
     * for the new parameters. The slot then behaves exactly like any
     * finite-work app: when its items are done the threads leave and
     * completionTime(i) records the departure. Reuses member scratch, so
     * binding performs no steady-state-path allocations.
     */
    void bindAppSlot(size_t i, const workload::AppParams* params,
                     int threads, double workItems);

    /**
     * Return slot @p i to the idle pool after its job was reaped: zero
     * threads, no work, completion cleared, ready for the next bind.
     */
    void releaseAppSlot(size_t i);

    /** Whether every finite-work app has completed. */
    bool allComplete() const;

    /** Items accumulated by app @p i since the start of the run. */
    double lifetimeItems(size_t i) const { return cumItems_[i]; }

    // ----- accounting ----------------------------------------------------
    /** Energy/work integration since the last resetStatsWindow(). */
    const telemetry::EnergyAccount& energy() const { return energy_; }
    /** Low-level counters since the last resetStatsWindow(). */
    const telemetry::Counters& counters() const { return counters_; }
    /** Mutable counters, for governors recording resilience accounting. */
    telemetry::Counters& mutableCounters() { return counters_; }
    /**
     * Named-metric registry (run-scoped). Components register counters,
     * gauges, and histograms here; the harness snapshots the registry
     * into ExperimentResult::metrics when the run ends.
     */
    telemetry::MetricsRegistry& metrics() { return metrics_; }
    const telemetry::MetricsRegistry& metrics() const { return metrics_; }
    /** Per-app items accumulated since the last resetStatsWindow(). */
    double appItems(size_t i) const { return appItems_[i]; }
    /** Restart the measurement window (e.g. to exclude convergence). */
    void resetStatsWindow();
    double statsWindowSec() const { return energy_.seconds(); }

    /** Recorded total-power trace (bucketed). */
    const std::vector<telemetry::TracePoint>& powerTrace() const
    {
        return powerTrace_;
    }
    /** Recorded aggregate-performance trace (bucketed). */
    const std::vector<telemetry::TracePoint>& perfTrace() const
    {
        return perfTrace_;
    }

    /** Seconds during which true power exceeded @p cap (plus 2%/1W tol). */
    double capViolationSec(double cap) const;

    // ----- execution ------------------------------------------------------
    /** Advance the simulation until @p untilSec. */
    void run(double untilSec);

    /**
     * Pre-reserve the trace buffers for a run extending to @p untilSec.
     * run() does this on entry, so after the first tick of a horizon the
     * steady-state tick path performs zero heap allocations (the property
     * the allocation regression test pins); call it ahead with the final
     * horizon when allocation-free ticking must hold across several
     * incremental run() calls.
     */
    void reserveTraces(double untilSec);

    const PlatformOptions& options() const { return options_; }

  private:
    void tick();
    void resolveSteadyState();

    PlatformOptions options_;
    std::unique_ptr<faults::FaultInjector> injector_;
    uint64_t injectorActivatedSeen_ = 0;
    machine::Machine machine_;
    machine::PowerModel powerModel_;
    sched::Scheduler scheduler_;
    sched::SolveCache solveCache_;
    sched::SolveScratch solveScratch_;
    std::vector<sched::AppDemand> apps_;
    uint64_t appsVersion_ = 0;

    // Cached steady-state solution and its inputs.
    sched::SystemOutcome steady_;
    machine::MachineConfig steadyCfg_;
    std::array<double, 2> steadyDuty_ = {-1.0, -1.0};
    uint64_t steadyAppsVersion_ = ~0ULL;
    std::array<double, 2> steadySocketPower_ = {0.0, 0.0};

    // Lagged observables.
    telemetry::FirstOrderLag powerLag_[2];
    std::vector<telemetry::FirstOrderLag> itemLags_;
    telemetry::FirstOrderLag ipsLag_;
    telemetry::FirstOrderLag bwLag_;
    telemetry::FirstOrderLag spinLag_;
    telemetry::FirstOrderLag busyLag_;
    double laggedTotalPower_ = 0.0;
    std::array<double, 2> laggedSocketPower_ = {0.0, 0.0};
    std::vector<double> laggedItems_;

    // Sensors.
    telemetry::NoisySensor powerMeter_;
    telemetry::NoisySensor perfMeter_;
    std::array<telemetry::NoisySensor, 2> raplMeter_;

    // References for normalized performance.
    std::vector<double> soloRef_;
    // Reused buffers for bindAppSlot's solo-rate re-solve.
    std::vector<sched::AppDemand> soloDemand_;
    sched::SystemOutcome soloOut_;

    // Accounting.
    telemetry::EnergyAccount energy_;
    telemetry::Counters counters_;
    telemetry::MetricsRegistry metrics_;
    trace::Recorder* trace_ = nullptr;
    std::vector<double> appItems_;
    std::vector<double> cumItems_;
    std::vector<double> workItems_;       // 0 = run forever
    std::vector<double> completionTime_;  // -1 = still running
    std::vector<telemetry::TracePoint> powerTrace_;
    std::vector<telemetry::TracePoint> perfTrace_;
    double bucketStart_ = 0.0;
    double bucketPowerSum_ = 0.0;
    double bucketPerfSum_ = 0.0;
    int bucketCount_ = 0;

    // Actors.
    struct Registration
    {
        Actor* actor;
        double nextDue;
    };
    std::vector<Registration> actors_;
    bool started_ = false;

    double now_ = 0.0;
};

}  // namespace pupil::sim

#endif  // PUPIL_SIM_PLATFORM_H_
