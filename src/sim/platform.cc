#include "platform.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pupil::sim {

namespace {

util::Rng
seededRng(uint64_t seed, uint64_t stream)
{
    util::Rng root(seed);
    for (uint64_t i = 0; i < stream; ++i)
        root = root.split();
    return root.split();
}

}  // namespace

Platform::Platform(const PlatformOptions& options,
                   std::vector<sched::AppDemand> apps)
    : options_(options),
      injector_(options.faultSpec.empty()
                    ? nullptr
                    : std::make_unique<faults::FaultInjector>(
                          faults::FaultSchedule::parse(options.faultSpec),
                          seededRng(options.seed, 5).next())),
      machine_(),
      powerModel_(options.powerParams),
      scheduler_(options.mcBandwidthGBs),
      solveCache_(sched::SolveCache::envDisabled()
                      ? 0
                      : options.solveCacheCapacity),
      apps_(std::move(apps)),
      powerLag_{telemetry::FirstOrderLag(options.powerLagTau),
                telemetry::FirstOrderLag(options.powerLagTau)},
      ipsLag_(options.perfLagTau),
      bwLag_(options.perfLagTau),
      spinLag_(options.perfLagTau),
      busyLag_(options.perfLagTau),
      powerMeter_(options.powerNoise, seededRng(options.seed, 1)),
      perfMeter_(options.perfNoise, seededRng(options.seed, 2)),
      raplMeter_{telemetry::NoisySensor(options.raplNoise,
                                        seededRng(options.seed, 3)),
                 telemetry::NoisySensor(options.raplNoise,
                                        seededRng(options.seed, 4))}
{
    if (injector_ != nullptr)
        machine_.attachFaults(injector_.get());
    itemLags_.assign(apps_.size(),
                     telemetry::FirstOrderLag(options.perfLagTau));
    laggedItems_.assign(apps_.size(), 0.0);
    appItems_.assign(apps_.size(), 0.0);
    cumItems_.assign(apps_.size(), 0.0);
    workItems_.assign(apps_.size(), 0.0);
    completionTime_.assign(apps_.size(), -1.0);

    // Solo reference rates: each app alone in the maximal configuration,
    // used to normalize the aggregate performance signal.
    soloRef_.assign(apps_.size(), 1.0);
    const machine::MachineConfig maxCfg = machine::maximalConfig();
    for (size_t i = 0; i < apps_.size(); ++i) {
        if (apps_[i].threads <= 0 || apps_[i].params == nullptr)
            continue;
        const sched::SystemOutcome solo =
            scheduler_.solve(maxCfg, {1.0, 1.0}, {apps_[i]});
        soloRef_[i] = std::max(solo.apps[0].itemsPerSec, 1e-12);
    }
    resolveSteadyState();
}

void
Platform::addActor(Actor* actor)
{
    assert(!started_);
    actors_.push_back({actor, 0.0});
}

void
Platform::attachTrace(trace::Recorder* recorder)
{
    trace_ = recorder;
    if (injector_ != nullptr)
        injector_->attachTrace(recorder);
}

void
Platform::warmStart(const machine::MachineConfig& cfg)
{
    machine_.requestConfig(cfg, now_ - 1.0);
    resolveSteadyState();
    // Jump lags and observables to the new steady state (pre-run only).
    laggedTotalPower_ = 0.0;
    for (int s = 0; s < 2; ++s) {
        powerLag_[s].reset(steadySocketPower_[s]);
        laggedSocketPower_[s] = steadySocketPower_[s];
        laggedTotalPower_ += steadySocketPower_[s];
    }
    for (size_t i = 0; i < apps_.size(); ++i) {
        itemLags_[i].reset(steady_.apps[i].itemsPerSec);
        laggedItems_[i] = steady_.apps[i].itemsPerSec;
    }
    ipsLag_.reset(steady_.totalIps);
    bwLag_.reset(steady_.totalBytesPerSec);
}

void
Platform::resolveSteadyState()
{
    const machine::MachineConfig cfg = machine_.effectiveConfig(now_);
    const std::array<double, 2> duty = {machine_.dutyCycle(0, now_),
                                        machine_.dutyCycle(1, now_)};
    if (cfg == steadyCfg_ && duty == steadyDuty_ &&
        appsVersion_ == steadyAppsVersion_) {
        return;
    }
    // The cache keys app params by identity; appsVersion_ is the epoch
    // that invalidates entries after in-place mutation (touchApps).
    solveCache_.setAppsEpoch(appsVersion_);
    const bool hit =
        solveCache_.solve(scheduler_, cfg, duty, apps_, solveScratch_,
                          steady_);
    metrics_.addCounter(hit ? "sched.solve_cache.hits"
                            : "sched.solve_cache.misses");
    steadyCfg_ = cfg;
    steadyDuty_ = duty;
    steadyAppsVersion_ = appsVersion_;
    for (int s = 0; s < 2; ++s) {
        steadySocketPower_[s] =
            powerModel_.socketPower(cfg, s, steady_.loads[s], duty[s]);
    }
    // A fresh allocation is in force: the effective configuration (or its
    // duty cycle) changed and the scheduler re-placed every thread.
    trace::emit(trace_, now_, trace::EventKind::kAllocApplied,
                cfg.pstate[0], cfg.pstate[1], cfg.activeCores(0),
                cfg.activeCores(1));
    metrics_.addCounter("sched.resolves");
}

void
Platform::solveCached(const machine::MachineConfig& cfg,
                      const std::array<double, 2>& duty,
                      const std::vector<sched::AppDemand>& apps,
                      sched::SystemOutcome& out)
{
    solveCache_.setAppsEpoch(appsVersion_);
    const bool hit =
        solveCache_.solve(scheduler_, cfg, duty, apps, solveScratch_, out);
    metrics_.addCounter(hit ? "sched.solve_cache.hits"
                            : "sched.solve_cache.misses");
}

double
Platform::readPower()
{
    const double measured = powerMeter_.sample(laggedTotalPower_);
    if (injector_ == nullptr)
        return measured;
    return injector_->sensorSample(faults::SensorChannel::kPower, measured,
                                   now_);
}

double
Platform::readPerformance()
{
    double aggregate = 0.0;
    for (size_t i = 0; i < apps_.size(); ++i)
        aggregate += laggedItems_[i] / soloRef_[i];
    const double measured = perfMeter_.sample(aggregate);
    if (injector_ == nullptr)
        return measured;
    return injector_->sensorSample(faults::SensorChannel::kPerf, measured,
                                   now_);
}

double
Platform::readSocketPowerEstimate(int socket)
{
    assert(socket >= 0 && socket < 2);
    // The firmware's event-count-based estimator tracks the package's
    // electrical power essentially instantaneously; only the external
    // meter channel sees the thermal/measurement lag.
    const double measured = raplMeter_[socket].sample(
        steadySocketPower_[socket]);
    if (injector_ == nullptr)
        return measured;
    return injector_->sensorSample(socket == 0
                                       ? faults::SensorChannel::kRaplSocket0
                                       : faults::SensorChannel::kRaplSocket1,
                                   measured, now_);
}

void
Platform::setAppThreads(size_t i, int threads)
{
    assert(i < apps_.size());
    apps_[i].threads = threads;
    ++appsVersion_;
}

void
Platform::setAppWorkItems(size_t i, double items)
{
    assert(i < apps_.size());
    workItems_[i] = items;
}

void
Platform::bindAppSlot(size_t i, const workload::AppParams* params,
                      int threads, double workItems)
{
    assert(i < apps_.size());
    assert(params != nullptr && threads > 0 && workItems > 0.0);
    apps_[i].params = params;
    apps_[i].threads = threads;
    workItems_[i] = workItems;
    cumItems_[i] = 0.0;
    appItems_[i] = 0.0;
    completionTime_[i] = -1.0;
    // A fresh job starts cold; its rate lags toward steady state just
    // like the warm-up of a statically configured app.
    itemLags_[i].reset(0.0);
    laggedItems_[i] = 0.0;
    ++appsVersion_;

    // Solo reference for the normalized performance signal; member
    // buffers keep the re-solve off the heap once warm.
    soloDemand_.resize(1);
    soloDemand_[0] = apps_[i];
    scheduler_.solve(machine::maximalConfig(), {1.0, 1.0}, soloDemand_,
                     solveScratch_, soloOut_);
    soloRef_[i] = std::max(soloOut_.apps[0].itemsPerSec, 1e-12);
}

void
Platform::releaseAppSlot(size_t i)
{
    assert(i < apps_.size());
    apps_[i].threads = 0;
    workItems_[i] = 0.0;
    completionTime_[i] = -1.0;
    ++appsVersion_;
}

bool
Platform::allComplete() const
{
    for (size_t i = 0; i < apps_.size(); ++i) {
        if (workItems_[i] > 0.0 && completionTime_[i] < 0.0)
            return false;
    }
    return true;
}

void
Platform::resetStatsWindow()
{
    energy_.reset();
    counters_.reset();
    std::fill(appItems_.begin(), appItems_.end(), 0.0);
}

double
Platform::capViolationSec(double cap) const
{
    const double limit = cap + std::max(0.02 * cap, 1.0);
    double seconds = 0.0;
    for (const auto& pt : powerTrace_) {
        if (pt.value > limit)
            seconds += options_.traceResolutionSec;
    }
    return seconds;
}

void
Platform::reserveTraces(double untilSec)
{
    const size_t buckets =
        size_t(std::max(0.0, untilSec) / options_.traceResolutionSec) + 2;
    powerTrace_.reserve(buckets);
    perfTrace_.reserve(buckets);
}

void
Platform::run(double untilSec)
{
    reserveTraces(untilSec);
    if (!started_) {
        started_ = true;
        for (auto& reg : actors_) {
            reg.actor->onStart(*this);
            reg.nextDue = now_;
        }
    }
    while (now_ < untilSec - 1e-12)
        tick();
}

void
Platform::tick()
{
    const double dt = options_.tickSec;

    if (injector_ != nullptr) {
        // Publish the clock for boundaries without a time parameter (the
        // MSR file) and surface newly entered fault windows.
        injector_->setNow(now_);
        const uint64_t activated = injector_->eventsActivated();
        if (activated != injectorActivatedSeen_) {
            counters_.addFaultsInjected(activated - injectorActivatedSeen_);
            metrics_.addCounter("faults.activated",
                                activated - injectorActivatedSeen_);
        }
        injectorActivatedSeen_ = activated;
    }

    resolveSteadyState();

    // Advance lagged observables toward the steady-state solution.
    double totalPower = 0.0;
    for (int s = 0; s < 2; ++s) {
        laggedSocketPower_[s] = powerLag_[s].step(steadySocketPower_[s], dt);
        totalPower += laggedSocketPower_[s];
    }
    laggedTotalPower_ = totalPower;
    double aggregate = 0.0;
    for (size_t i = 0; i < apps_.size(); ++i) {
        laggedItems_[i] = itemLags_[i].step(steady_.apps[i].itemsPerSec, dt);
        aggregate += laggedItems_[i] / soloRef_[i];
        appItems_[i] += laggedItems_[i] * dt;
        cumItems_[i] += laggedItems_[i] * dt;
        // Finite-work apps exit once their work is done, releasing their
        // threads (and their spinning) back to the system.
        if (workItems_[i] > 0.0 && completionTime_[i] < 0.0 &&
            cumItems_[i] >= workItems_[i]) {
            completionTime_[i] = now_;
            apps_[i].threads = 0;
            ++appsVersion_;
            trace::emit(trace_, now_, trace::EventKind::kAppComplete, now_,
                        0.0, int32_t(i));
            metrics_.addCounter("sched.app_completions");
        }
    }
    const double ips = ipsLag_.step(steady_.totalIps, dt);
    const double bw = bwLag_.step(steady_.totalBytesPerSec, dt);
    double spinTarget = 0.0;
    for (const auto& app : steady_.apps)
        spinTarget += app.spinCtx;
    const double spin = spinLag_.step(spinTarget, dt);
    double busyTarget = 0.0;
    for (const auto& load : steady_.loads)
        busyTarget += load.busyPrimary + load.busySibling;
    const double busy = busyLag_.step(busyTarget, dt);

    energy_.add(laggedTotalPower_, aggregate, dt);
    counters_.add(ips, bw, spin, busy, dt);

    // Trace bucketing.
    bucketPowerSum_ += laggedTotalPower_;
    bucketPerfSum_ += aggregate;
    ++bucketCount_;
    if (now_ + dt - bucketStart_ >= options_.traceResolutionSec - 1e-12) {
        const double t = bucketStart_ + options_.traceResolutionSec / 2.0;
        powerTrace_.push_back({t, bucketPowerSum_ / bucketCount_});
        perfTrace_.push_back({t, bucketPerfSum_ / bucketCount_});
        metrics_.observe("platform.power_watts",
                         bucketPowerSum_ / bucketCount_);
        metrics_.observe("platform.perf_normalized",
                         bucketPerfSum_ / bucketCount_);
        bucketStart_ = now_ + dt;
        bucketPowerSum_ = bucketPerfSum_ = 0.0;
        bucketCount_ = 0;
    }

    // Wake due actors.
    for (auto& reg : actors_) {
        if (now_ + 1e-12 >= reg.nextDue) {
            reg.actor->onTick(*this, now_);
            reg.nextDue = now_ + std::max(reg.actor->periodSec(), dt);
        }
    }

    now_ += dt;
}

}  // namespace pupil::sim
