#ifndef PUPIL_SIM_ACTOR_H_
#define PUPIL_SIM_ACTOR_H_

namespace pupil::sim {

class Platform;

/**
 * A periodic participant in the simulation (a governor, the RAPL firmware,
 * a workload phase driver, ...).
 *
 * Actors are woken by the platform at their declared period. All control
 * systems in this repo -- hardware and software alike -- are written as
 * non-blocking actors; anything the paper's pseudocode expresses as
 * "wait t time units" becomes explicit actor state.
 */
class Actor
{
  public:
    virtual ~Actor() = default;

    /** Called once when the platform starts running. */
    virtual void onStart(Platform& platform) { (void)platform; }

    /** Called every period; @p now is the simulation time in seconds. */
    virtual void onTick(Platform& platform, double now) = 0;

    /** Activation period in seconds (default: every platform tick). */
    virtual double periodSec() const { return 0.0; }
};

}  // namespace pupil::sim

#endif  // PUPIL_SIM_ACTOR_H_
