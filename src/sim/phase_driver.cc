#include "phase_driver.h"

#include <cassert>

#include "sim/platform.h"

namespace pupil::sim {

PhaseDriver::PhaseDriver(size_t appIndex, workload::PhaseSchedule schedule)
    : appIndex_(appIndex), schedule_(std::move(schedule))
{
    assert(!schedule_.empty());
    current_ = schedule_.paramsAt(0.0);
    phaseIndex_ = schedule_.phaseIndexAt(0.0);
}

void
PhaseDriver::onStart(Platform& platform)
{
    (void)platform;
    assert(appIndex_ < platform.appCount());
    assert(platform.app(appIndex_).params == &current_);
}

void
PhaseDriver::onTick(Platform& platform, double now)
{
    const size_t active = schedule_.phaseIndexAt(now);
    if (active == phaseIndex_)
        return;
    phaseIndex_ = active;
    ++transitions_;
    current_ = schedule_.paramsAt(now);
    platform.touchApps();
}

}  // namespace pupil::sim
