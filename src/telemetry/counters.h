#ifndef PUPIL_TELEMETRY_COUNTERS_H_
#define PUPIL_TELEMETRY_COUNTERS_H_

#include <cstdint>

namespace pupil::telemetry {

/**
 * Low-level hardware-event accounting, analogous to the VTune metrics the
 * paper collects for Table 6: giga-instructions per second, achieved
 * memory bandwidth, and the fraction of busy cycles spent spinning
 * (retiring instructions without forward progress).
 *
 * Also carries the resilience accounting surfaced by the faults
 * subsystem: time spent in a governor's degraded (hardware-only) mode and
 * injected-vs-detected fault counts. Unlike the activity accumulators,
 * which are scoped to the measurement window via reset(), fault
 * accounting spans the whole run (resetFaults() clears it explicitly) so
 * a fault injected before the stats window still shows up in the result.
 */
class Counters
{
  public:
    /**
     * Accumulate @p dt seconds of activity.
     * @param ips      useful instructions per second
     * @param bytesPerSec achieved memory traffic
     * @param spinCtx  context-seconds/s burned busy-waiting
     * @param busyCtx  total busy context-seconds/s
     */
    void add(double ips, double bytesPerSec, double spinCtx, double busyCtx,
             double dt);

    /** Clear the windowed activity accumulators (not fault accounting). */
    void reset();

    double seconds() const { return seconds_; }

    /** Mean useful instruction rate in GIPS. */
    double gips() const;

    /** Mean achieved memory bandwidth in GB/s. */
    double bandwidthGBs() const;

    /** Spin cycles as a percentage of busy cycles (Table 6). */
    double spinPercent() const;

    // ----- resilience accounting (whole-run, see class comment) ----------
    /** Accumulate @p dt seconds spent in degraded (hardware-only) mode. */
    void addDegradedTime(double dt) { degradedSeconds_ += dt; }

    /** Record @p n fault events injected by the fault schedule. */
    void addFaultsInjected(uint64_t n) { faultsInjected_ += n; }

    /** Record @p n faults detected by a governor's telemetry watchdog. */
    void addFaultsDetected(uint64_t n) { faultsDetected_ += n; }

    /** Clear fault accounting (independent of reset()). */
    void resetFaults();

    double degradedSeconds() const { return degradedSeconds_; }
    uint64_t faultsInjected() const { return faultsInjected_; }
    uint64_t faultsDetected() const { return faultsDetected_; }

  private:
    double instructions_ = 0.0;
    double bytes_ = 0.0;
    double spinCtxSeconds_ = 0.0;
    double busyCtxSeconds_ = 0.0;
    double seconds_ = 0.0;
    double degradedSeconds_ = 0.0;
    uint64_t faultsInjected_ = 0;
    uint64_t faultsDetected_ = 0;
};

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_COUNTERS_H_
