#ifndef PUPIL_TELEMETRY_COUNTERS_H_
#define PUPIL_TELEMETRY_COUNTERS_H_

namespace pupil::telemetry {

/**
 * Low-level hardware-event accounting, analogous to the VTune metrics the
 * paper collects for Table 6: giga-instructions per second, achieved
 * memory bandwidth, and the fraction of busy cycles spent spinning
 * (retiring instructions without forward progress).
 */
class Counters
{
  public:
    /**
     * Accumulate @p dt seconds of activity.
     * @param ips      useful instructions per second
     * @param bytesPerSec achieved memory traffic
     * @param spinCtx  context-seconds/s burned busy-waiting
     * @param busyCtx  total busy context-seconds/s
     */
    void add(double ips, double bytesPerSec, double spinCtx, double busyCtx,
             double dt);

    /** Clear accumulated state. */
    void reset();

    double seconds() const { return seconds_; }

    /** Mean useful instruction rate in GIPS. */
    double gips() const;

    /** Mean achieved memory bandwidth in GB/s. */
    double bandwidthGBs() const;

    /** Spin cycles as a percentage of busy cycles (Table 6). */
    double spinPercent() const;

  private:
    double instructions_ = 0.0;
    double bytes_ = 0.0;
    double spinCtxSeconds_ = 0.0;
    double busyCtxSeconds_ = 0.0;
    double seconds_ = 0.0;
};

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_COUNTERS_H_
