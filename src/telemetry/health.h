#ifndef PUPIL_TELEMETRY_HEALTH_H_
#define PUPIL_TELEMETRY_HEALTH_H_

#include <cstdint>
#include <deque>

namespace pupil::telemetry {

/** Plausibility and staleness rules for one measurement channel. */
struct HealthOptions
{
    /** Readings outside [minValue, maxValue] are implausible. */
    double minValue = 0.5;
    double maxValue = 2000.0;
    /**
     * Exact-repeat count at which a channel is declared stuck. Real
     * sensors carry continuous noise, so identical consecutive readings
     * essentially never occur on a healthy channel. Only meaningful for
     * noisy channels: a walker fed noiseless model evaluations repeats
     * values legitimately, so <= 0 disables the staleness check.
     */
    int staleRepeatLimit = 12;
    /** Recent samples considered by healthy(). */
    int window = 10;
    /** Fraction of rejected samples in the window above which the
     *  channel is unhealthy. */
    double maxRejectFraction = 0.25;
};

/**
 * Stale-sample watchdog and sanity bounds for a sensor channel.
 *
 * The decision framework and the PUPiL governor feed every raw sample
 * through a monitor before acting on it: implausible (out-of-bounds) and
 * stale (stuck-at) readings are rejected, and a channel whose recent
 * window contains too many rejects is flagged unhealthy -- the trigger
 * for PUPiL's fallback to hardware-only enforcement. On healthy streams
 * the monitor accepts every sample and changes no behaviour.
 */
class HealthMonitor
{
  public:
    HealthMonitor() = default;
    explicit HealthMonitor(const HealthOptions& options)
        : options_(options)
    {
    }

    /**
     * Classify one sample; returns true when it is plausible and fresh.
     * Updates the staleness tracker and the recent-health window.
     */
    bool accept(double value);

    /** Whether the recent window is mostly accepted samples. */
    bool healthy() const;

    /** Total rejected samples since construction/reset(). */
    uint64_t rejected() const { return rejected_; }

    /** Consecutive accepted samples ending now. */
    int consecutiveAccepted() const { return streak_; }

    /** Forget all history (e.g. when re-engaging after degradation). */
    void reset();

    const HealthOptions& options() const { return options_; }

  private:
    HealthOptions options_;
    double lastValue_ = 0.0;
    bool hasLast_ = false;
    int repeats_ = 0;
    std::deque<bool> window_;
    int windowRejects_ = 0;
    uint64_t rejected_ = 0;
    int streak_ = 0;
};

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_HEALTH_H_
