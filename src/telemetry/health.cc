#include "health.h"

namespace pupil::telemetry {

bool
HealthMonitor::accept(double value)
{
    if (hasLast_ && value == lastValue_)
        ++repeats_;
    else
        repeats_ = 0;
    lastValue_ = value;
    hasLast_ = true;

    const bool inBounds =
        value >= options_.minValue && value <= options_.maxValue;
    const bool stale = options_.staleRepeatLimit > 0 &&
                       repeats_ >= options_.staleRepeatLimit;
    const bool ok = inBounds && !stale;

    window_.push_back(ok);
    if (!ok)
        ++windowRejects_;
    while (int(window_.size()) > options_.window) {
        if (!window_.front())
            --windowRejects_;
        window_.pop_front();
    }

    if (ok) {
        ++streak_;
    } else {
        streak_ = 0;
        ++rejected_;
    }
    return ok;
}

bool
HealthMonitor::healthy() const
{
    // A single implausible reading is a glitch, not a fault: the verdict
    // needs at least two rejects in the window before turning unhealthy.
    if (windowRejects_ < 2)
        return true;
    return double(windowRejects_) <=
           options_.maxRejectFraction * double(window_.size());
}

void
HealthMonitor::reset()
{
    hasLast_ = false;
    repeats_ = 0;
    window_.clear();
    windowRejects_ = 0;
    streak_ = 0;
    rejected_ = 0;
}

}  // namespace pupil::telemetry
