#include "settling.h"

#include <algorithm>
#include <cmath>

namespace pupil::telemetry {

std::vector<TracePoint>
smoothTrace(const std::vector<TracePoint>& trace, double windowSec)
{
    if (trace.empty() || windowSec <= 0.0)
        return trace;
    std::vector<TracePoint> smoothed;
    smoothed.reserve(trace.size());
    size_t lo = 0;
    double sum = 0.0;
    size_t hi = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        const double t = trace[i].timeSec;
        while (hi < trace.size() && trace[hi].timeSec <= t) {
            sum += trace[hi].value;
            ++hi;
        }
        while (lo < hi && trace[lo].timeSec < t - windowSec) {
            sum -= trace[lo].value;
            ++lo;
        }
        const size_t n = hi - lo;
        smoothed.push_back({t, n > 0 ? sum / double(n) : trace[i].value});
    }
    return smoothed;
}

double
settlingTime(const std::vector<TracePoint>& trace, double capWatts,
             const SettlingBands& bands)
{
    if (trace.size() < 2)
        return 0.0;
    const std::vector<TracePoint> smoothed =
        smoothTrace(trace, bands.smoothSec);
    const double t0 = smoothed.front().timeSec;
    const double capLimit =
        capWatts + std::max(bands.capRelTol * capWatts, bands.capAbsTol);

    // Never settled: the trace still violates the cap at its end. Report
    // the full trace duration so this case cannot be mistaken for
    // "settled immediately" (which returns 0).
    if (smoothed.back().value > capLimit)
        return smoothed.back().timeSec - t0;

    // Scan backward for the last violating sample.
    double settleAt = t0;
    for (size_t i = smoothed.size(); i-- > 0;) {
        if (smoothed[i].value > capLimit) {
            settleAt = smoothed[i].timeSec;
            break;
        }
    }
    return settleAt - t0;
}

double
convergenceTime(const std::vector<TracePoint>& trace,
                const SettlingBands& bands)
{
    if (trace.size() < 2)
        return 0.0;
    const std::vector<TracePoint> smoothed =
        smoothTrace(trace, bands.smoothSec);
    const double t0 = smoothed.front().timeSec;
    const double tEnd = smoothed.back().timeSec;

    // Steady-state value: mean of the trace tail.
    double tailSum = 0.0;
    size_t tailCount = 0;
    for (const TracePoint& pt : smoothed) {
        if (pt.timeSec >= tEnd - bands.tailSec) {
            tailSum += pt.value;
            ++tailCount;
        }
    }
    const double finalValue = tailCount > 0 ? tailSum / double(tailCount)
                                            : smoothed.back().value;
    const double valueBand =
        std::max(bands.relBand * std::fabs(finalValue), bands.absBand);

    // Never converged: the trace ends outside the steady-state band (e.g.
    // a still-ramping signal). Report the full duration, not 0.
    if (std::fabs(smoothed.back().value - finalValue) > valueBand)
        return tEnd - t0;

    double settleAt = t0;
    for (size_t i = smoothed.size(); i-- > 0;) {
        if (std::fabs(smoothed[i].value - finalValue) > valueBand) {
            settleAt = smoothed[i].timeSec;
            break;
        }
    }
    return settleAt - t0;
}

}  // namespace pupil::telemetry
