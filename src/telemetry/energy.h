#ifndef PUPIL_TELEMETRY_ENERGY_H_
#define PUPIL_TELEMETRY_ENERGY_H_

namespace pupil::telemetry {

/**
 * Integrates energy and work over a run, supporting the paper's energy-
 * efficiency metric (Section 5.5: performance divided by power, i.e. work
 * per joule).
 */
class EnergyAccount
{
  public:
    /** Accumulate @p powerWatts and @p itemsPerSec over @p dt seconds. */
    void add(double powerWatts, double itemsPerSec, double dt);

    /** Clear all accumulated state (e.g. to measure a late window only). */
    void reset();

    double joules() const { return joules_; }
    double items() const { return items_; }
    double seconds() const { return seconds_; }

    /** Mean power over the accounted interval (W). */
    double meanPower() const;

    /** Mean throughput over the accounted interval (items/s). */
    double meanItemsPerSec() const;

    /** Work per joule: the energy-efficiency metric. */
    double itemsPerJoule() const;

  private:
    double joules_ = 0.0;
    double items_ = 0.0;
    double seconds_ = 0.0;
};

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_ENERGY_H_
