#include "sensor.h"

#include <cmath>

namespace pupil::telemetry {

double
NoisySensor::sample(double truth)
{
    double value = truth * (1.0 + rng_.gaussian(0.0, noise_.relStddev));
    if (rng_.bernoulli(noise_.outlierProb))
        value *= noise_.outlierFactor;
    return value;
}

double
FirstOrderLag::step(double target, double dt)
{
    if (!initialized_) {
        reset(target);
        return value_;
    }
    if (tau_ <= 0.0) {
        value_ = target;
        return value_;
    }
    const double alpha = 1.0 - std::exp(-dt / tau_);
    value_ += alpha * (target - value_);
    return value_;
}

void
FirstOrderLag::reset(double value)
{
    value_ = value;
    initialized_ = true;
}

}  // namespace pupil::telemetry
