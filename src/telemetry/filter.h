#ifndef PUPIL_TELEMETRY_FILTER_H_
#define PUPIL_TELEMETRY_FILTER_H_

#include <cstddef>
#include <deque>

namespace pupil::telemetry {

/**
 * The paper's deviation-based outlier filter (Section 3.1.1, Eqs. 1-4).
 *
 * Measurements are collected over a sliding window; the filtered feedback
 * is the mean of the samples that fall within three standard deviations of
 * the unfiltered window mean. This lets the decision framework react to
 * persistent workload changes while ignoring transient disturbances such
 * as page faults.
 */
class SigmaFilter
{
  public:
    /**
     * @param window      number of samples kept
     * @param sigmaBound  deviation bound in standard deviations (paper: 3)
     */
    explicit SigmaFilter(size_t window = 20, double sigmaBound = 3.0);

    /** Add one raw measurement. */
    void add(double x);

    /** Discard all samples (e.g. after a configuration change). */
    void reset();

    /** Number of samples currently in the window. */
    size_t count() const { return samples_.size(); }

    /** Whether the window is full. */
    bool full() const { return samples_.size() >= window_; }

    /**
     * Filtered feedback X_feedback: mean of in-window samples within
     * sigmaBound standard deviations (inclusive) of the unfiltered mean.
     * Returns the plain mean when every sample is an outlier by that rule
     * (degenerate windows) and 0 when empty.
     */
    double filtered() const;

    /** Unfiltered window mean (Eq. 1). */
    double rawMean() const;

    /** Unfiltered window standard deviation (Eq. 2). */
    double rawStddev() const;

  private:
    size_t window_;
    double sigmaBound_;
    std::deque<double> samples_;
};

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_FILTER_H_
