#ifndef PUPIL_TELEMETRY_SETTLING_H_
#define PUPIL_TELEMETRY_SETTLING_H_

#include <vector>

namespace pupil::telemetry {

/** One point of a recorded power trace. */
struct TracePoint
{
    double timeSec = 0.0;
    double value = 0.0;
};

/** Tolerances used when deciding that a power trace has settled. */
struct SettlingBands
{
    /** Band around the final value, relative. */
    double relBand = 0.03;
    /** Band around the final value, absolute floor (Watts). */
    double absBand = 1.5;
    /** Allowed cap overshoot, relative. */
    double capRelTol = 0.02;
    /** Allowed cap overshoot, absolute floor (Watts). */
    double capAbsTol = 1.0;
    /** Boxcar pre-smoothing window (seconds). */
    double smoothSec = 0.1;
    /** Portion of the trace tail used to estimate the final value (s). */
    double tailSec = 5.0;
};

/**
 * Settling-time computation (paper Section 4.3.1).
 *
 * The settling time is t_ss - t_0, where t_ss is the instant after which
 * the (smoothed) power signal never again exceeds the cap beyond
 * tolerance -- i.e. the time the controller needs to durably *enforce* the
 * cap. This is the definition under which the paper's numbers cohere:
 * RAPL clamps within milliseconds; PUPiL matches it because hardware owns
 * the cap while software explores below it; Soft-DVFS needs seconds to
 * walk the p-states down; and Soft-Decision's exploratory probes keep
 * spiking above the cap until its walk completes.
 *
 * @param trace   (time, power) samples, time ascending, t_0 = first sample
 * @param capWatts the enforced power cap
 * @return settling time in seconds: 0 if the cap is never violated
 *         ("settled immediately"), the full trace duration if the trace
 *         still violates the cap at its end ("never settled").
 */
double settlingTime(const std::vector<TracePoint>& trace, double capWatts,
                    const SettlingBands& bands = SettlingBands());

/**
 * Convergence time: the instant after which the smoothed signal stays
 * within a band of its steady-state (trace tail) value. This is the
 * control-theoretic settling notion, reported alongside the paper's
 * cap-enforcement metric because it also captures how long a controller
 * keeps reconfiguring *below* the cap. Returns 0 for a trace that is in
 * band throughout and the full trace duration for one that ends out of
 * band (never converged).
 */
double convergenceTime(const std::vector<TracePoint>& trace,
                       const SettlingBands& bands = SettlingBands());

/** Boxcar-smooth a trace with the given window (helper, exposed for tests). */
std::vector<TracePoint> smoothTrace(const std::vector<TracePoint>& trace,
                                    double windowSec);

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_SETTLING_H_
