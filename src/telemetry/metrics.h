#ifndef PUPIL_TELEMETRY_METRICS_H_
#define PUPIL_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pupil::telemetry {

/**
 * Unified named-metric registry: counters (monotonic event counts),
 * gauges (last-written values), and histograms (count/sum/min/max
 * summaries of observed samples).
 *
 * One registry belongs to one platform/experiment -- the same per-run
 * ownership as telemetry::Counters and trace::Recorder -- so sweeps stay
 * deterministic and lock-free; the harness snapshots it into
 * ExperimentResult::metrics when the run ends. Registration happens
 * implicitly on first touch; names are dotted lowercase paths
 * ("rapl.limit_writes", "pupil.degraded_entries").
 *
 * Updates are a map lookup (transparent, so string literals don't
 * allocate) plus a few stores; cheap enough for every control-period
 * call site, though the 1 ms firmware inner loop records through the
 * trace ring instead.
 */
class MetricsRegistry
{
  public:
    enum class Type { kCounter, kGauge, kHistogram };

    struct Metric
    {
        Type type = Type::kCounter;
        double value = 0.0;    ///< counter total or gauge value
        uint64_t count = 0;    ///< histogram observations
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** Add @p delta to counter @p name (created at zero on first use). */
    void addCounter(std::string_view name, uint64_t delta = 1);

    /** Set gauge @p name to @p value. */
    void setGauge(std::string_view name, double value);

    /** Record @p value into histogram @p name. */
    void observe(std::string_view name, double value);

    /** Counter total / gauge value / histogram mean; 0 when absent. */
    double value(std::string_view name) const;

    /** Counter total as an integer count; 0 when absent or not a counter. */
    uint64_t counterTotal(std::string_view name) const;

    /** The metric registered under @p name, or nullptr. */
    const Metric* find(std::string_view name) const;

    size_t size() const { return metrics_.size(); }
    bool empty() const { return metrics_.empty(); }

    /**
     * Flatten to (name, value) pairs sorted by name: counters and gauges
     * as-is; a histogram expands to name.count/.mean/.min/.max. This is
     * the form carried into ExperimentResult and the bench outputs.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** Drop every metric (per-job reset when an owner is reused). */
    void reset() { metrics_.clear(); }

  private:
    Metric& upsert(std::string_view name, Type type);

    std::map<std::string, Metric, std::less<>> metrics_;
};

/** Lookup helper for flattened snapshots (tests, bench tables). */
double metricOr(const std::vector<std::pair<std::string, double>>& snapshot,
                std::string_view name, double fallback = 0.0);

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_METRICS_H_
