#include "counters.h"

namespace pupil::telemetry {

void
Counters::add(double ips, double bytesPerSec, double spinCtx, double busyCtx,
              double dt)
{
    instructions_ += ips * dt;
    bytes_ += bytesPerSec * dt;
    spinCtxSeconds_ += spinCtx * dt;
    busyCtxSeconds_ += busyCtx * dt;
    seconds_ += dt;
}

void
Counters::reset()
{
    instructions_ = 0.0;
    bytes_ = 0.0;
    spinCtxSeconds_ = 0.0;
    busyCtxSeconds_ = 0.0;
    seconds_ = 0.0;
}

void
Counters::resetFaults()
{
    degradedSeconds_ = 0.0;
    faultsInjected_ = 0;
    faultsDetected_ = 0;
}

double
Counters::gips() const
{
    return seconds_ > 0.0 ? instructions_ / seconds_ / 1e9 : 0.0;
}

double
Counters::bandwidthGBs() const
{
    return seconds_ > 0.0 ? bytes_ / seconds_ / 1e9 : 0.0;
}

double
Counters::spinPercent() const
{
    return busyCtxSeconds_ > 0.0
               ? 100.0 * spinCtxSeconds_ / busyCtxSeconds_
               : 0.0;
}

}  // namespace pupil::telemetry
