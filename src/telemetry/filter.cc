#include "filter.h"

#include <cmath>

namespace pupil::telemetry {

SigmaFilter::SigmaFilter(size_t window, double sigmaBound)
    : window_(window > 0 ? window : 1), sigmaBound_(sigmaBound)
{
}

void
SigmaFilter::add(double x)
{
    samples_.push_back(x);
    while (samples_.size() > window_)
        samples_.pop_front();
}

void
SigmaFilter::reset()
{
    samples_.clear();
}

double
SigmaFilter::rawMean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

double
SigmaFilter::rawStddev() const
{
    if (samples_.empty())
        return 0.0;
    const double mu = rawMean();
    double sum = 0.0;
    for (double x : samples_)
        sum += (x - mu) * (x - mu);
    return std::sqrt(sum / static_cast<double>(samples_.size()));
}

double
SigmaFilter::filtered() const
{
    if (samples_.empty())
        return 0.0;
    const double mu = rawMean();
    const double bound = sigmaBound_ * rawStddev();
    double sum = 0.0;
    size_t kept = 0;
    for (double x : samples_) {
        // Inclusive bound: paper Eqs. 1-4 keep samples lying exactly on
        // the 3-sigma boundary. (<= also covers the degenerate bound == 0
        // window, where every sample equals the mean.)
        if (std::fabs(x - mu) <= bound) {
            sum += x;
            ++kept;
        }
    }
    if (kept == 0)
        return mu;
    return sum / static_cast<double>(kept);
}

}  // namespace pupil::telemetry
