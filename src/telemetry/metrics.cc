#include "metrics.h"

#include <algorithm>

namespace pupil::telemetry {

MetricsRegistry::Metric&
MetricsRegistry::upsert(std::string_view name, Type type)
{
    const auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        // First writer wins on type; a mismatched later writer falls
        // through and updates the existing slot as its original type
        // (harmless for the numeric fields we track).
        return it->second;
    }
    Metric metric;
    metric.type = type;
    return metrics_.emplace(std::string(name), metric).first->second;
}

void
MetricsRegistry::addCounter(std::string_view name, uint64_t delta)
{
    upsert(name, Type::kCounter).value += double(delta);
}

void
MetricsRegistry::setGauge(std::string_view name, double value)
{
    upsert(name, Type::kGauge).value = value;
}

void
MetricsRegistry::observe(std::string_view name, double value)
{
    Metric& metric = upsert(name, Type::kHistogram);
    if (metric.count == 0) {
        metric.min = metric.max = value;
    } else {
        metric.min = std::min(metric.min, value);
        metric.max = std::max(metric.max, value);
    }
    ++metric.count;
    metric.sum += value;
}

const MetricsRegistry::Metric*
MetricsRegistry::find(std::string_view name) const
{
    const auto it = metrics_.find(name);
    return it != metrics_.end() ? &it->second : nullptr;
}

double
MetricsRegistry::value(std::string_view name) const
{
    const Metric* metric = find(name);
    if (metric == nullptr)
        return 0.0;
    if (metric->type == Type::kHistogram)
        return metric->count > 0 ? metric->sum / double(metric->count) : 0.0;
    return metric->value;
}

uint64_t
MetricsRegistry::counterTotal(std::string_view name) const
{
    const Metric* metric = find(name);
    if (metric == nullptr || metric->type != Type::kCounter)
        return 0;
    return uint64_t(metric->value + 0.5);
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(metrics_.size());
    for (const auto& [name, metric] : metrics_) {
        if (metric.type == Type::kHistogram) {
            out.emplace_back(name + ".count", double(metric.count));
            out.emplace_back(name + ".mean",
                             metric.count > 0
                                 ? metric.sum / double(metric.count)
                                 : 0.0);
            out.emplace_back(name + ".min", metric.min);
            out.emplace_back(name + ".max", metric.max);
        } else {
            out.emplace_back(name, metric.value);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

double
metricOr(const std::vector<std::pair<std::string, double>>& snapshot,
         std::string_view name, double fallback)
{
    for (const auto& [key, value] : snapshot) {
        if (key == name)
            return value;
    }
    return fallback;
}

}  // namespace pupil::telemetry
