#ifndef PUPIL_TELEMETRY_SENSOR_H_
#define PUPIL_TELEMETRY_SENSOR_H_

#include "util/rng.h"

namespace pupil::telemetry {

/** Noise characteristics of a measurement channel. */
struct SensorNoise
{
    /** Multiplicative Gaussian noise (relative standard deviation). */
    double relStddev = 0.02;
    /** Probability per sample of a transient outlier (e.g. a page fault). */
    double outlierProb = 0.01;
    /** Multiplicative factor applied to outlier samples. */
    double outlierFactor = 0.35;
};

/**
 * A noisy measurement channel over a true underlying signal.
 *
 * Real power meters and heartbeat streams are noisy (Section 3.1.1); this
 * class injects multiplicative Gaussian noise and occasional transient
 * outliers so the 3-sigma filter and the decision framework are exercised
 * under realistic conditions. Deterministic given its RNG seed.
 */
class NoisySensor
{
  public:
    NoisySensor(SensorNoise noise, util::Rng rng)
        : noise_(noise), rng_(rng)
    {
    }

    /** Sample the channel: @p truth corrupted by the noise model. */
    double sample(double truth);

    const SensorNoise& noise() const { return noise_; }

  private:
    SensorNoise noise_;
    util::Rng rng_;
};

/**
 * First-order (exponential) lag, used to model the electrical/thermal
 * response of power to actuation and the gradual effect of thread
 * migration on throughput.
 */
class FirstOrderLag
{
  public:
    /** @param tauSec time constant; smaller reacts faster. */
    explicit FirstOrderLag(double tauSec) : tau_(tauSec) {}

    /** Advance by @p dt toward @p target and return the new value. */
    double step(double target, double dt);

    /** Jump directly to @p value (e.g. at simulation start). */
    void reset(double value);

    double value() const { return value_; }

  private:
    double tau_;
    double value_ = 0.0;
    bool initialized_ = false;
};

}  // namespace pupil::telemetry

#endif  // PUPIL_TELEMETRY_SENSOR_H_
