#include "energy.h"

namespace pupil::telemetry {

void
EnergyAccount::add(double powerWatts, double itemsPerSec, double dt)
{
    joules_ += powerWatts * dt;
    items_ += itemsPerSec * dt;
    seconds_ += dt;
}

void
EnergyAccount::reset()
{
    joules_ = 0.0;
    items_ = 0.0;
    seconds_ = 0.0;
}

double
EnergyAccount::meanPower() const
{
    return seconds_ > 0.0 ? joules_ / seconds_ : 0.0;
}

double
EnergyAccount::meanItemsPerSec() const
{
    return seconds_ > 0.0 ? items_ / seconds_ : 0.0;
}

double
EnergyAccount::itemsPerJoule() const
{
    return joules_ > 0.0 ? items_ / joules_ : 0.0;
}

}  // namespace pupil::telemetry
