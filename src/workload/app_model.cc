#include "app_model.h"

#include <algorithm>

namespace pupil::workload {

double
AppParams::speedup(double coreEquiv) const
{
    const double e =
        std::clamp(coreEquiv, 1e-6, static_cast<double>(maxUsefulThreads));
    const double denom = serialFrac + (1.0 - serialFrac) / e +
                         commOverhead * std::max(0.0, e - 1.0);
    return 1.0 / denom;
}

}  // namespace pupil::workload
