#ifndef PUPIL_WORKLOAD_PHASE_H_
#define PUPIL_WORKLOAD_PHASE_H_

#include <string>
#include <vector>

#include "workload/app_model.h"

namespace pupil::workload {

/**
 * One phase of a time-varying application: a parameter vector and how long
 * it lasts. Real applications move through phases (x264 alternating
 * between motion estimation and entropy coding, data-mining codes between
 * scan and update passes); the paper's feedback loops exist precisely to
 * track such changes ("react to application phase changes or other
 * environmental fluctuations", Section 3).
 */
struct Phase
{
    AppParams params;
    double durationSec = 30.0;
};

/**
 * A cyclic phase schedule. At any time the active parameter vector is the
 * phase the (wrapped) clock falls into; schedules repeat forever.
 */
class PhaseSchedule
{
  public:
    PhaseSchedule() = default;

    /** Build from a list of phases; at least one required for use. */
    explicit PhaseSchedule(std::vector<Phase> phases);

    bool empty() const { return phases_.empty(); }
    size_t phaseCount() const { return phases_.size(); }
    double cycleSec() const { return cycleSec_; }

    /** The parameters in force at time @p now (cyclic). */
    const AppParams& paramsAt(double now) const;

    /** Index of the phase active at @p now (cyclic). */
    size_t phaseIndexAt(double now) const;

    /**
     * Convenience: a two-phase schedule alternating between @p a and @p b
     * every @p halfPeriodSec seconds.
     */
    static PhaseSchedule alternating(const AppParams& a, const AppParams& b,
                                     double halfPeriodSec);

    /**
     * Convenience: derive a "memory phase" variant of @p base -- the same
     * application in a bandwidth-hungry, lower-IPC stretch of execution.
     */
    static AppParams memoryPhaseOf(const AppParams& base);

    /**
     * Convenience: derive a "serial phase" variant of @p base -- a stretch
     * with a much larger sequential fraction (e.g. a reduction or I/O
     * stage), where wide allocations stop paying off.
     */
    static AppParams serialPhaseOf(const AppParams& base);

  private:
    std::vector<Phase> phases_;
    double cycleSec_ = 0.0;
};

}  // namespace pupil::workload

#endif  // PUPIL_WORKLOAD_PHASE_H_
