#ifndef PUPIL_WORKLOAD_CATALOG_H_
#define PUPIL_WORKLOAD_CATALOG_H_

#include <string>
#include <vector>

#include "workload/app_model.h"

namespace pupil::workload {

/**
 * The 20 benchmark applications the paper evaluates (Section 4.1):
 * PARSEC (x264, swaptions, vips, fluidanimate, blackscholes, bodytrack),
 * Minebench (ScalParC, kmeans, HOP, PLSA, svmrfe, btree, kmeans_fuzzy),
 * Rodinia (cfd, nn->bfs, lud->jacobi-like, particlefilter), plus jacobi,
 * swish++, dijkstra, and STREAM.
 *
 * Parameter vectors are calibrated so each application reproduces its
 * published characteristics: Fig. 5's GIPS/bandwidth placement, the
 * red/blue split of RAPL efficiency at the 140 W cap, x264's hyperthreading
 * aversion (Section 2), kmeans' inter-socket bottleneck (Section 5.2), and
 * the spin-polling behaviour behind Table 6.
 */
const std::vector<AppParams>& benchmarkCatalog();

/** Find a benchmark by name; aborts if unknown (programming error). */
const AppParams& findBenchmark(const std::string& name);

/** Whether the catalog contains @p name. */
bool hasBenchmark(const std::string& name);

/**
 * The calibration kernel for Algorithm 2: an embarrassingly parallel
 * application without inter-thread communication, memory-light, with high
 * hyperthread yield -- chosen so resource impacts are measured at their
 * full potential.
 */
const AppParams& calibrationApp();

/**
 * Names of applications for which the paper reports RAPL within 10% of
 * optimal at the 140 W cap (the "blue dots" of Fig. 5). Mix construction
 * (Table 4) draws from this set and its complement.
 */
const std::vector<std::string>& raplFriendlySet();

/** Names of the "red dot" applications (RAPL > 10% from optimal). */
const std::vector<std::string>& raplUnfriendlySet();

}  // namespace pupil::workload

#endif  // PUPIL_WORKLOAD_CATALOG_H_
