#include "catalog.h"

#include <cstdlib>

#include "util/log.h"

namespace pupil::workload {

namespace {

/** Compact constructor helper to keep the table below readable. */
AppParams
app(std::string name, double serial, double spin, double comm, double xsock,
    double ht, double ipc, double bpi, double mcBoost, SyncKind sync,
    int maxThreads, double workPerItem, double activity)
{
    AppParams p;
    p.name = std::move(name);
    p.serialFrac = serial;
    p.spinSerialFrac = spin;
    p.commOverhead = comm;
    p.crossSocketPenalty = xsock;
    p.htYield = ht;
    p.ipc = ipc;
    p.bytesPerInstr = bpi;
    p.mcBoost = mcBoost;
    p.sync = sync;
    p.maxUsefulThreads = maxThreads;
    p.workPerItem = workPerItem;
    p.activity = activity;
    return p;
}

std::vector<AppParams>
buildCatalog()
{
    using enum SyncKind;
    std::vector<AppParams> apps;
    // ----- RAPL-friendly ("blue") applications: ample parallelism that
    // scales to all 32 virtual cores, so DVFS-only capping is near optimal.
    apps.push_back(app("blackscholes", .010, 0, .0010, .02, .25, 1.2, 0.4,
                       1.05, kNone, 32, 2.0e9, .85));
    apps.push_back(app("PLSA", .020, 0, .0010, .03, .30, 1.1, 0.6, 1.10,
                       kCondVar, 32, 2.0e9, .80));
    apps.push_back(app("bfs", .030, 0, .0010, .05, .30, 0.7, 2.0, 1.30,
                       kCondVar, 32, 2.0e9, .70));
    apps.push_back(app("jacobi", .005, 0, .0010, .02, .25, 0.9, 1.8, 1.30,
                       kNone, 32, 2.0e9, .75));
    apps.push_back(app("swaptions", .005, 0, .0010, .03, .30, 1.3, 0.2, 1.00,
                       kNone, 32, 2.0e9, .90));
    apps.push_back(app("bodytrack", .030, 0, .0010, .04, .30, 1.0, 0.7, 1.10,
                       kCondVar, 32, 2.0e9, .75));
    apps.push_back(app("btree", .020, 0, .0010, .03, .35, 0.8, 1.0, 1.20,
                       kCondVar, 32, 2.0e9, .75));
    apps.push_back(app("cfd", .010, 0, .0010, .02, .20, 0.9, 1.55, 1.30,
                       kCondVar, 32, 2.0e9, .75));
    apps.push_back(app("particlefilter", .020, 0, .0010, .03, .30, 1.1, 0.5,
                       1.05, kCondVar, 32, 2.0e9, .80));
    apps.push_back(app("svmrfe", .020, 0, .0010, .03, .30, 1.2, 0.8, 1.10,
                       kNone, 32, 2.0e9, .80));
    apps.push_back(app("fluidanimate", .020, 0, .0010, .03, .35, 1.0, 1.1,
                       1.10, kCondVar, 32, 2.0e9, .80));
    // ----- RAPL-unfriendly ("red") applications: limited parallelism,
    // scaling pathologies, hyperthread aversion, or bandwidth saturation.
    apps.push_back(app("x264", .040, 0, .0015, .08, -.10, 1.4, 0.9, 1.20,
                       kCondVar, 24, 6.5e8, .80));
    apps.push_back(app("vips", .050, 0, .0120, .20, .08, 1.0, 1.0, 1.15,
                       kCondVar, 12, 2.0e9, .75));
    apps.push_back(app("HOP", .080, 0, .0150, .15, .05, 1.0, 1.0, 1.15,
                       kCondVar, 8, 2.0e9, .75));
    apps.push_back(app("ScalParC", .060, .05, .0250, .25, .05, 0.9, 1.5,
                       1.20, kSpin, 16, 2.0e9, .75));
    apps.push_back(app("dijkstra", .250, .20, .0200, .20, .05, 0.9, 0.8,
                       1.10, kSpin, 4, 1.0e9, .70));
    apps.push_back(app("STREAM", .010, 0, .0010, .02, .05, 0.8, 12.0, 1.05,
                       kNone, 32, 2.0e9, .65));
    apps.push_back(app("kmeans", .060, .06, .0030, .50, .10, 1.1, 1.8, 1.25,
                       kSpin, 16, 2.0e9, .80));
    apps.push_back(app("kmeans_fuzzy", .050, .05, .0040, .45, .15, 1.0, 1.2,
                       1.15, kSpin, 24, 2.0e9, .80));
    apps.push_back(app("swish++", .100, 0, .0100, .25, .10, 0.9, 0.8, 1.20,
                       kCondVar, 8, 1.0e9, .70));
    return apps;
}

}  // namespace

const std::vector<AppParams>&
benchmarkCatalog()
{
    static const std::vector<AppParams> catalog = buildCatalog();
    return catalog;
}

const AppParams&
findBenchmark(const std::string& name)
{
    for (const auto& params : benchmarkCatalog()) {
        if (params.name == name)
            return params;
    }
    util::Log(util::LogLevel::kError) << "unknown benchmark: " << name;
    std::abort();
}

bool
hasBenchmark(const std::string& name)
{
    for (const auto& params : benchmarkCatalog()) {
        if (params.name == name)
            return true;
    }
    return false;
}

const AppParams&
calibrationApp()
{
    // Embarrassingly parallel, no inter-thread communication, memory-light,
    // with high hyperthread yield and NUMA sensitivity, so Algorithm 2
    // observes each resource's full potential impact.
    static const AppParams cal =
        app("calibration", .002, 0, .0003, .02, .85, 1.1, 0.8, 1.75,
            SyncKind::kNone, 32, 2.0e9, .85);
    return cal;
}

const std::vector<std::string>&
raplFriendlySet()
{
    static const std::vector<std::string> blue = {
        "blackscholes", "PLSA", "bfs", "jacobi", "swaptions", "bodytrack",
        "btree", "cfd", "particlefilter", "svmrfe", "fluidanimate",
    };
    return blue;
}

const std::vector<std::string>&
raplUnfriendlySet()
{
    static const std::vector<std::string> red = {
        "x264", "vips", "HOP", "ScalParC", "dijkstra",
        "STREAM", "kmeans", "kmeans_fuzzy", "swish++",
    };
    return red;
}

}  // namespace pupil::workload
