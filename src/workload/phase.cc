#include "phase.h"

#include <cassert>
#include <cmath>

namespace pupil::workload {

PhaseSchedule::PhaseSchedule(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    for (const Phase& phase : phases_) {
        assert(phase.durationSec > 0.0);
        cycleSec_ += phase.durationSec;
    }
}

size_t
PhaseSchedule::phaseIndexAt(double now) const
{
    assert(!phases_.empty());
    if (phases_.size() == 1 || cycleSec_ <= 0.0)
        return 0;
    double offset = std::fmod(now, cycleSec_);
    if (offset < 0.0)
        offset += cycleSec_;
    for (size_t i = 0; i < phases_.size(); ++i) {
        if (offset < phases_[i].durationSec)
            return i;
        offset -= phases_[i].durationSec;
    }
    return phases_.size() - 1;
}

const AppParams&
PhaseSchedule::paramsAt(double now) const
{
    return phases_[phaseIndexAt(now)].params;
}

PhaseSchedule
PhaseSchedule::alternating(const AppParams& a, const AppParams& b,
                           double halfPeriodSec)
{
    return PhaseSchedule({{a, halfPeriodSec}, {b, halfPeriodSec}});
}

AppParams
PhaseSchedule::memoryPhaseOf(const AppParams& base)
{
    AppParams phase = base;
    phase.name = base.name + ":mem";
    phase.bytesPerInstr = base.bytesPerInstr * 4.0 + 1.0;
    phase.ipc = base.ipc * 0.7;
    phase.activity = base.activity * 0.85;
    phase.mcBoost = std::max(base.mcBoost, 1.3);
    return phase;
}

AppParams
PhaseSchedule::serialPhaseOf(const AppParams& base)
{
    AppParams phase = base;
    phase.name = base.name + ":serial";
    phase.serialFrac = std::min(0.45, base.serialFrac + 0.3);
    phase.maxUsefulThreads = std::max(2, base.maxUsefulThreads / 4);
    return phase;
}

}  // namespace pupil::workload
