#include "mixes.h"

#include <cstdlib>

#include "util/log.h"

namespace pupil::workload {

const std::vector<Mix>&
multiAppMixes()
{
    // Table 4 of the paper, verbatim ("fussy-kmeans" and "fuzzy-kmeans"
    // both refer to kmeans_fuzzy).
    static const std::vector<Mix> mixes = {
        {"mix1", {"jacobi", "swaptions", "bfs", "particlefilter"}},
        {"mix2", {"cfd", "bfs", "fluidanimate", "jacobi"}},
        {"mix3", {"blackscholes", "cfd", "jacobi", "fluidanimate"}},
        {"mix4", {"particlefilter", "blackscholes", "swaptions", "btree"}},
        {"mix5", {"x264", "dijkstra", "vips", "HOP"}},
        {"mix6", {"STREAM", "kmeans_fuzzy", "HOP", "dijkstra"}},
        {"mix7", {"STREAM", "kmeans", "vips", "HOP"}},
        {"mix8", {"kmeans", "dijkstra", "x264", "STREAM"}},
        {"mix9", {"jacobi", "swaptions", "kmeans_fuzzy", "vips"}},
        {"mix10", {"cfd", "bfs", "x264", "HOP"}},
        {"mix11", {"jacobi", "blackscholes", "dijkstra", "kmeans_fuzzy"}},
        {"mix12", {"btree", "particlefilter", "kmeans", "STREAM"}},
    };
    return mixes;
}

const Mix&
findMix(const std::string& name)
{
    for (const auto& mix : multiAppMixes()) {
        if (mix.name == name)
            return mix;
    }
    util::Log(util::LogLevel::kError) << "unknown mix: " << name;
    std::abort();
}

int
threadsPerApp(Scenario scenario)
{
    return scenario == Scenario::kCooperative ? 8 : 32;
}

const char*
scenarioName(Scenario scenario)
{
    return scenario == Scenario::kCooperative ? "cooperative" : "oblivious";
}

}  // namespace pupil::workload
