#ifndef PUPIL_WORKLOAD_MIXES_H_
#define PUPIL_WORKLOAD_MIXES_H_

#include <string>
#include <vector>

#include "workload/app_model.h"

namespace pupil::workload {

/** A named multi-application workload (one row of the paper's Table 4). */
struct Mix
{
    std::string name;
    std::vector<std::string> apps;  ///< four benchmark names
};

/**
 * The paper's 12 multi-application mixes (Table 4). Mixes 1-4 draw only
 * from the RAPL-friendly set, 5-8 only from the RAPL-unfriendly set, and
 * 9-12 take two applications from each.
 */
const std::vector<Mix>& multiAppMixes();

/** Look up a mix by name ("mix1" .. "mix12"); aborts if unknown. */
const Mix& findMix(const std::string& name);

/**
 * Multi-application launch scenarios (Section 5.4):
 *  - kCooperative: each application knows it shares the machine and
 *    launches 8 threads (4 apps x 8 = 32 = virtual core count);
 *  - kOblivious: each application requests all 32 virtual cores, putting
 *    128 runnable threads in the system.
 */
enum class Scenario { kCooperative, kOblivious };

/** Threads each application launches under @p scenario. */
int threadsPerApp(Scenario scenario);

/** Human-readable scenario name. */
const char* scenarioName(Scenario scenario);

}  // namespace pupil::workload

#endif  // PUPIL_WORKLOAD_MIXES_H_
