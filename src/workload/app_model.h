#ifndef PUPIL_WORKLOAD_APP_MODEL_H_
#define PUPIL_WORKLOAD_APP_MODEL_H_

#include <string>

namespace pupil::workload {

/**
 * How an application's threads synchronize. This drives the scheduler
 * model's treatment of serial phases:
 *  - kNone:    embarrassingly parallel, no serial synchronization beyond
 *              the Amdahl serial fraction.
 *  - kCondVar: blocking synchronization; threads waiting during serial
 *              phases sleep and yield their CPU to other applications.
 *  - kSpin:    polling synchronization; waiting threads busy-spin, holding
 *              their scheduling quanta while making no forward progress
 *              (the pathology behind the paper's Table 6).
 */
enum class SyncKind { kNone, kCondVar, kSpin };

/**
 * Analytic model of one benchmark application.
 *
 * Each of the paper's 20 benchmarks (plus the calibration kernel used by
 * Algorithm 2) is described by a parameter vector. The scheduler evaluates
 * these parameters to produce throughput, instruction rate, bandwidth, and
 * spin-cycle figures for any machine configuration and co-runner set.
 */
struct AppParams
{
    std::string name;

    /** Amdahl serial fraction of total work. */
    double serialFrac = 0.02;

    /**
     * Spin-synchronized part of the serial fraction (<= serialFrac).
     * While this part executes, the app's other allocated contexts
     * busy-wait. Only meaningful when sync == kSpin.
     */
    double spinSerialFrac = 0.0;

    /** Per-extra-core linear communication overhead coefficient. */
    double commOverhead = 0.002;

    /**
     * Throughput penalty (0..1) applied when the app's threads span both
     * sockets (inter-socket communication bottleneck; large for kmeans).
     */
    double crossSocketPenalty = 0.05;

    /**
     * Marginal throughput contributed by a sibling hyperthread context
     * relative to a full core (-0.1 .. 0.9; negative means hyperthreading
     * actively hurts, as the paper observes for x264).
     */
    double htYield = 0.2;

    /** Base useful instructions per cycle per thread. */
    double ipc = 1.0;

    /** Memory traffic in bytes per useful instruction. */
    double bytesPerInstr = 0.8;

    /**
     * Throughput multiplier when both memory controllers are interleaved
     * (NUMA latency/queueing benefit, distinct from the bandwidth roofline).
     */
    double mcBoost = 1.1;

    SyncKind sync = SyncKind::kCondVar;

    /** Threads beyond this count contribute no additional speedup. */
    int maxUsefulThreads = 32;

    /** Useful instructions per reported work item (heartbeat). */
    double workPerItem = 2.0e9;

    /** Dynamic activity factor for the power model, (0, 1]. */
    double activity = 0.8;

    /**
     * Amdahl-style speedup at @p coreEquiv core-equivalents of parallelism:
     * 1 / (s + (1-s)/min(E, maxUseful) + c * max(0, E-1)).
     * Fractional E (< 1) degrades gracefully.
     */
    double speedup(double coreEquiv) const;
};

}  // namespace pupil::workload

#endif  // PUPIL_WORKLOAD_APP_MODEL_H_
