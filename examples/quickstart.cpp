/**
 * @file
 * Quickstart: cap one application with PUPiL and watch it converge.
 *
 * Builds the simulated dual-socket server, launches x264, programs a
 * 140 W cap through PUPiL (hardware-first for timeliness, then the
 * software walk for efficiency), and prints what the system is doing
 * every few seconds: the OS-level configuration the walker chose, the
 * effective (RAPL-clamped) state, power, and throughput.
 */
#include <cstdio>

#include <pupil/pupil.h>

using namespace pupil;

int
main()
{
    // 1. A workload: x264 with as many threads as the machine has
    //    hardware contexts (the paper's single-app setup).
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("x264"), 32}};

    // 2. The platform: machine model + scheduler + sensors. The machine
    //    starts busy and uncapped.
    sim::PlatformOptions options;
    options.seed = 2016;  // ASPLOS'16 -- any seed gives one reproducible run
    sim::Platform platform(options, apps);
    platform.warmStart(machine::maximalConfig());

    // 3. The control systems: RAPL firmware plus the PUPiL governor.
    rapl::RaplController rapl;
    core::Pupil pupil;
    pupil.attachRapl(&rapl);
    pupil.setCap(140.0);
    platform.addActor(&rapl);
    platform.addActor(&pupil);

    std::printf("PUPiL quickstart: x264 under a 140 W cap\n");
    std::printf("%6s  %-26s  %7s  %9s  %s\n", "t(s)", "OS configuration",
                "P(W)", "frames/s", "walker");
    for (double t = 2.0; t <= 60.0; t += 2.0) {
        platform.run(t);
        std::printf("%6.0f  %-26s  %7.1f  %9.1f  %s\n", t,
                    platform.machine().osConfig(t).toString().c_str(),
                    platform.truePower(), platform.trueAppRate(0),
                    pupil.walker()->phaseName().c_str());
    }

    std::printf("\nConverged: %s; power %.1f W (cap 140 W); %.1f frames/s\n",
                pupil.converged() ? "yes" : "no", platform.truePower(),
                platform.trueAppRate(0));
    std::printf("The cap was enforced by hardware within ~0.3 s, while the "
                "software walk spent ~40 s discovering that x264 wants both "
                "sockets, no hyperthreads, and both memory controllers.\n");
    return 0;
}
