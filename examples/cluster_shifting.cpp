/**
 * @file
 * Cluster-level power shifting on top of node-level PUPiL: three servers
 * share a 400 W rack budget. One node runs a limited-parallelism service
 * that cannot use its even share; the shifter moves the stranded watts to
 * the compute-hungry nodes while every node's hardware-backed capper keeps
 * its own limit enforced. The rack never exceeds its budget.
 */
#include <cstdio>

#include <pupil/pupil.h>

using namespace pupil;

int
main()
{
    cluster::PowerShifter::Options options;
    options.globalBudgetWatts = 400.0;
    options.periodSec = 2.0;
    cluster::PowerShifter rack(options);

    const size_t n0 = rack.addNode("compute-0",
                                   harness::singleApp("swaptions"),
                                   harness::GovernorKind::kPupil, 101);
    const size_t n1 = rack.addNode("compute-1",
                                   harness::singleApp("blackscholes"),
                                   harness::GovernorKind::kPupil, 102);
    const size_t n2 = rack.addNode("service-0",
                                   harness::singleApp("swish++"),
                                   harness::GovernorKind::kPupil, 103);

    std::printf("Rack budget: %.0f W across 3 nodes (PUPiL on each)\n\n",
                options.globalBudgetWatts);
    std::printf("%6s | %21s | %21s | %21s | %9s\n", "t(s)",
                "compute-0 cap/power", "compute-1 cap/power",
                "service-0 cap/power", "rack (W)");
    for (double t = 10.0; t <= 120.0; t += 10.0) {
        rack.run(t);
        std::printf("%6.0f | %9.1f / %9.1f | %9.1f / %9.1f | %9.1f / %9.1f "
                    "| %9.1f\n",
                    t, rack.node(n0).capWatts,
                    rack.node(n0).platform->truePower(),
                    rack.node(n1).capWatts,
                    rack.node(n1).platform->truePower(),
                    rack.node(n2).capWatts,
                    rack.node(n2).platform->truePower(),
                    rack.totalPowerWatts());
    }

    std::printf("\nAfter %d reallocations the service node's stranded "
                "headroom has been shifted to the compute nodes; the rack "
                "stayed within %.0f W throughout (caps always sum to the "
                "budget: %.1f W).\n",
                rack.shifts(), options.globalBudgetWatts,
                rack.totalCapWatts());
    return 0;
}
