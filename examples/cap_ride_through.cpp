/**
 * @file
 * Riding through a power emergency: the cap drops in steps (datacenter
 * brownout) and later recovers. PUPiL's hybrid design shows its value:
 * every new cap is enforced by hardware within milliseconds, while the
 * software walk re-optimizes the resource mix at its own pace. The
 * example prints the cap, the actual power, and throughput around each
 * transition.
 */
#include <cstdio>

#include <pupil/pupil.h>

using namespace pupil;

namespace {

void
report(sim::Platform& platform, double t, double cap)
{
    std::printf("%6.0f  %6.0f  %7.1f  %9.2f  %s\n", t, cap,
                platform.truePower(), platform.trueAppRate(0),
                platform.machine().effectiveConfig(t).toString().c_str());
}

}  // namespace

int
main()
{
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("cfd"), 32}};
    sim::PlatformOptions options;
    options.seed = 7;
    sim::Platform platform(options, apps);
    platform.warmStart(machine::maximalConfig());

    rapl::RaplController rapl;
    core::Pupil pupil;
    pupil.attachRapl(&rapl);
    pupil.setCap(180.0);
    platform.addActor(&rapl);
    platform.addActor(&pupil);

    // Cap schedule: normal -> brownout -> emergency -> recovery.
    const struct { double untilSec; double cap; } schedule[] = {
        {60.0, 180.0}, {120.0, 100.0}, {180.0, 60.0}, {240.0, 140.0},
    };

    std::printf("cfd under a changing power cap (PUPiL)\n");
    std::printf("%6s  %6s  %7s  %9s  %s\n", "t(s)", "cap(W)", "P(W)",
                "items/s", "effective configuration");
    double start = 0.0;
    for (const auto& phase : schedule) {
        // Program the new cap through the hardware interface first --
        // exactly what PUPiL's timeliness design calls for.
        rapl.setTotalCapEvenSplit(phase.cap);
        pupil.setCap(phase.cap);
        for (double t = start + 10.0; t <= phase.untilSec; t += 10.0) {
            platform.run(t);
            report(platform, t, phase.cap);
        }
        start = phase.untilSec;
    }

    const double settle =
        telemetry::settlingTime(platform.powerTrace(), 60.0);
    std::printf("\nThe 60 W emergency cap was last violated %.2f s after "
                "t=0 -- i.e. within a blink of the 120 s cap change "
                "(hardware re-clamped immediately).\n", settle - 120.0);
    return 0;
}
