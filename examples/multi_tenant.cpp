/**
 * @file
 * Multi-tenant colocation under a power cap: the paper's "oblivious"
 * scenario. Four applications each grab all 32 virtual cores -- including
 * kmeans, whose polling synchronization poisons the machine -- and the
 * example compares how RAPL and PUPiL get the same batch of work done
 * under 140 W, reporting per-app completion times, weighted speedup, spin
 * cycles, and memory bandwidth (the Table 6 story).
 */
#include <cstdio>

#include <pupil/pupil.h>

using namespace pupil;

int
main()
{
    const double cap = 140.0;
    const auto& mix = workload::findMix("mix8");  // kmeans, dijkstra,
                                                  // x264, STREAM
    const auto apps =
        harness::mixApps(mix, workload::Scenario::kOblivious);

    // Size each tenant's job: 120 s of work at its solo-optimal rate.
    const sched::Scheduler sched;
    const machine::PowerModel pm;
    harness::ExperimentOptions options;
    options.capWatts = cap;
    for (const auto& app : apps) {
        const auto oracle = capping::searchOptimal(sched, pm, {app}, cap);
        options.workItems.push_back(oracle.appItemsPerSec[0] * 120.0);
    }

    std::printf("Oblivious colocation (%s: ", mix.name.c_str());
    for (const auto& name : mix.apps)
        std::printf("%s ", name.c_str());
    std::printf(") under %.0f W\nEach app launches 32 threads -- 128 "
                "runnable threads on 32 hardware contexts.\n\n", cap);

    harness::ExperimentResult results[2];
    int i = 0;
    for (auto kind : {harness::GovernorKind::kRapl,
                      harness::GovernorKind::kPupil}) {
        results[i] = harness::runExperiment(kind, apps, options);
        const auto& r = results[i];
        std::printf("--- %s ---\n", r.governor.c_str());
        double ws = 0.0;
        for (size_t a = 0; a < apps.size(); ++a) {
            std::printf("  %-14s finished after %6.0f s\n",
                        apps[a].params->name.c_str(), r.completionTimes[a]);
            ws += 120.0 / r.completionTimes[a] / double(apps.size());
        }
        std::printf("  weighted speedup %.3f | spin cycles %.1f%% | memory "
                    "bandwidth %.1f GB/s | mean power %.1f W\n\n", ws,
                    r.spinPercent, r.bandwidthGBs, r.meanPowerWatts);
        ++i;
    }

    std::printf("PUPiL confines the polling tenant, lets it finish, and "
                "returns the bandwidth to the memory-bound tenants -- the "
                "reason hardware-only capping is not enough for oblivious "
                "colocation (paper Section 5.4.2).\n");
    return 0;
}
