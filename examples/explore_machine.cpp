/**
 * @file
 * Explore the machine model: walk all 1024 user-accessible configurations
 * for a chosen benchmark (default: kmeans) and print the power/performance
 * Pareto frontier -- the set of configurations no other configuration
 * dominates. This is the search space every governor in this repo
 * navigates, and it shows at a glance why DVFS-only capping is leaving
 * performance on the table for some applications.
 *
 * Usage: explore_machine [benchmark]
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <pupil/pupil.h>

using namespace pupil;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "kmeans";
    if (!workload::hasBenchmark(name)) {
        std::printf("unknown benchmark '%s'; choose one of:\n",
                    name.c_str());
        for (const auto& app : workload::benchmarkCatalog())
            std::printf("  %s\n", app.name.c_str());
        return 1;
    }

    const sched::Scheduler sched;
    const machine::PowerModel pm;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark(name), 32}};

    struct Point
    {
        machine::MachineConfig cfg;
        double power;
        double items;
    };
    std::vector<Point> points;
    for (const auto& cfg : machine::enumerateUserConfigs()) {
        const auto out = sched.solve(cfg, {1.0, 1.0}, apps);
        points.push_back(
            {cfg, pm.totalPower(cfg, out.loads), out.apps[0].itemsPerSec});
    }

    // Pareto frontier: sort by power, keep strictly improving throughput.
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) {
                  return a.power < b.power;
              });
    std::vector<Point> frontier;
    double best = -1.0;
    for (const Point& pt : points) {
        if (pt.items > best * 1.002) {
            frontier.push_back(pt);
            best = pt.items;
        }
    }

    std::printf("%s: %zu configurations, %zu on the power/performance "
                "Pareto frontier\n\n", name.c_str(), points.size(),
                frontier.size());
    std::printf("%8s  %10s  %s\n", "P(W)", "items/s", "configuration");
    for (const Point& pt : frontier)
        std::printf("%8.1f  %10.2f  %s\n", pt.power, pt.items,
                    pt.cfg.toString().c_str());

    // Where would a DVFS-only capper sit at 140 W?
    const Point* dvfsChoice = nullptr;
    for (const Point& pt : points) {
        const auto& c = pt.cfg;
        if (c.totalContexts() == 32 && c.memControllers == 2 &&
            pt.power <= 140.0 &&
            (!dvfsChoice || pt.items > dvfsChoice->items)) {
            dvfsChoice = &pt;
        }
    }
    const Point* bestUnderCap = nullptr;
    for (const Point& pt : frontier) {
        if (pt.power <= 140.0)
            bestUnderCap = &pt;
    }
    if (dvfsChoice && bestUnderCap) {
        std::printf("\nAt a 140 W cap: DVFS-only (everything on) achieves "
                    "%.2f items/s; the frontier configuration %s achieves "
                    "%.2f items/s (%.2fx).\n",
                    dvfsChoice->items,
                    bestUnderCap->cfg.toString().c_str(),
                    bestUnderCap->items,
                    bestUnderCap->items / dvfsChoice->items);
    }
    return 0;
}
